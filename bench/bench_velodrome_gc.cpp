/**
 * @file
 * Experiment E6 — effect of Velodrome's garbage-collection optimization
 * (Section 5.1 credits it for the small graphs on Table 2 / GC-friendly
 * rows: "13 nodes in the graph for pmd, 4 nodes in sor").
 *
 * For each workload the harness runs Velodrome with GC on and off and
 * reports rows in the BENCH_memory.json schema (engine, gc, seconds,
 * events/s, end footprint, reclamation counters), written to
 * BENCH_velodrome_gc.json, so the reclamation reports of the clock
 * engines (bench_scaling --memory) and the graph baseline read the
 * same way.
 *
 * The run is also a gate: on the GC-friendly workloads (independent,
 * pipeline, naive — every transaction's predecessors complete) the
 * gc-on peak live graph must stay under the floor of a few dozen nodes
 * the paper describes, and GC must actually have deleted nodes. On the
 * star workload live hub transactions pin the whole graph, so the gate
 * instead checks GC *doesn't* pretend to collect it. A violated floor
 * exits non-zero.
 *
 * Usage: bench_velodrome_gc [--budget SECONDS] [--json PATH]
 */

#include <cstdio>
#include <string>

#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/str.hpp"
#include "velodrome/velodrome.hpp"

namespace {

using namespace aero;

struct Row {
    std::string workload;
    bool gc = false;
    RunResult result;
    VelodromeStats stats;
    size_t mem_end = 0;
};

/** Peak nodes the paper-scale GC-friendly workloads may keep live. */
constexpr uint64_t kGcFloorNodes = 64;

Row
run_one(const char* name, const Trace& t, bool gc, double budget)
{
    VelodromeOptions opts;
    opts.garbage_collect = gc;
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks(), opts);
    RunBudget rb;
    rb.max_seconds = budget;
    Row row;
    row.workload = name;
    row.gc = gc;
    row.result = run_checker(v, t, rb);
    row.stats = v.stats();
    row.mem_end = v.memory_bytes();
    return row;
}

void
append_row(std::string& json, const Row& r, bool last)
{
    const double evs =
        r.result.seconds > 0
            ? static_cast<double>(r.result.events_processed) /
                  r.result.seconds
            : 0.0;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"workload\": \"%s\", \"engine\": \"velodrome\", "
        "\"gc\": %s, \"events\": %llu, \"seconds\": %.4f, "
        "\"events_per_s\": %.0f, \"memory_end_bytes\": %zu, "
        "\"timed_out\": %s, \"max_live_nodes\": %llu, "
        "\"gc_deleted\": %llu, \"dfs_visits\": %llu}%s\n",
        r.workload.c_str(), r.gc ? "true" : "false",
        static_cast<unsigned long long>(r.result.events_processed),
        r.result.seconds, evs, r.mem_end,
        r.result.timed_out ? "true" : "false",
        static_cast<unsigned long long>(r.stats.max_live_nodes),
        static_cast<unsigned long long>(r.stats.gc_deleted),
        static_cast<unsigned long long>(r.stats.dfs_visits),
        last ? "" : ",");
    json += buf;
}

bool
run_workload(std::string& json, const char* name, const Trace& t,
             bool collectible, double budget, bool last)
{
    std::printf("%-24s %10s events\n", name,
                with_commas(t.size()).c_str());
    Row on = run_one(name, t, true, budget);
    Row off = run_one(name, t, false, budget);
    for (const Row* r : {&on, &off}) {
        std::printf("  gc=%-3s  %-3s  time %10s  peak nodes %10s  "
                    "dfs visits %14s  collected %10s  mem %12s B\n",
                    r->gc ? "on" : "off", r->result.verdict(),
                    r->result.timed_out
                        ? "TO"
                        : format_duration(r->result.seconds).c_str(),
                    with_commas(r->stats.max_live_nodes).c_str(),
                    with_commas(r->stats.dfs_visits).c_str(),
                    with_commas(r->stats.gc_deleted).c_str(),
                    with_commas(r->mem_end).c_str());
    }
    append_row(json, on, false);
    append_row(json, off, last);

    bool ok = true;
    if (collectible) {
        if (!on.result.timed_out &&
            on.stats.max_live_nodes > kGcFloorNodes) {
            std::fprintf(stderr,
                         "FAIL: %s with gc kept %llu live nodes "
                         "(floor %llu) — Velodrome GC regressed\n",
                         name,
                         static_cast<unsigned long long>(
                             on.stats.max_live_nodes),
                         static_cast<unsigned long long>(kGcFloorNodes));
            ok = false;
        }
        // A run that stops at a violation (or the budget) may not have
        // reached a collection point; only a full serializable pass
        // must show the mechanism actually deleting.
        if (!on.result.violation && !on.result.timed_out &&
            on.stats.gc_deleted == 0) {
            std::fprintf(stderr,
                         "FAIL: %s with gc deleted nothing — the floor "
                         "above measured an empty mechanism\n",
                         name);
            ok = false;
        }
    } else if (on.stats.max_live_nodes <= kGcFloorNodes &&
               !on.result.violation) {
        std::fprintf(stderr,
                     "FAIL: %s (uncollectible hub) reported a tiny live "
                     "graph — GC deleted nodes it must keep\n",
                     name);
        ok = false;
    }
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    double budget = 5.0;
    std::string json_path = "BENCH_velodrome_gc.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--budget" && i + 1 < argc)
            budget = std::stod(argv[++i]);
        else if (std::string(argv[i]) == "--json" && i + 1 < argc)
            json_path = argv[++i];
    }
    std::printf("Velodrome garbage-collection ablation "
                "(budget %.3gs per run)\n\n", budget);

    std::string json = "{\n  \"rows\": [\n";
    bool ok = true;
    ok &= run_workload(json, "independent 8x20000",
                       gen::make_independent(8, 20000, 8), true, budget,
                       false);
    ok &= run_workload(json, "pipeline 4x50000",
                       gen::make_pipeline(4, 50000), true, budget, false);
    {
        gen::NaiveSpecOptions n;
        n.threads = 6;
        n.events_per_thread = 100000;
        n.conflict_position = 0.9;
        ok &= run_workload(json, "naive 6x100000", gen::make_naive_spec(n),
                           true, budget, false);
    }
    {
        gen::StarOptions s;
        s.producers = 2;
        s.consumers = 2;
        s.rounds = 4000;
        ok &= run_workload(json, "star p2/c2 r4000", gen::make_star(s),
                           false, budget, true);
    }
    json += "  ]\n}\n";

    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());

    std::printf("Expected shape: GC keeps peak nodes tiny everywhere "
                "except the star,\nwhere live hub transactions pin the "
                "whole graph and GC does not help.\n");
    if (ok)
        std::printf("velodrome gc floor passed\n");
    return ok ? 0 : 1;
}
