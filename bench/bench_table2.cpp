/**
 * @file
 * Experiment E2 — reproduction of the paper's Table 2 (naive atomicity
 * specifications: every thread body is one transaction).
 *
 * Expected shape: violations close within the first few scheduling chunks
 * of the trace, Velodrome's graph never grows beyond a few mega-
 * transaction nodes, and the two checkers are comparable (paper speed-ups
 * 0.75-3.98) — the regime where vector-clock overhead is not paid back.
 */

#include "table_common.hpp"

int
main(int argc, char** argv)
{
    auto args = aero::bench::TableArgs::parse(argc, argv);
    aero::bench::run_table(
        "Table 2: naive atomicity specifications (all methods atomic)",
        aero::gen::table2_models(), args);
    return 0;
}
