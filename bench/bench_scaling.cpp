/**
 * @file
 * Experiment E4 — the paper's headline complexity claim, as a scaling
 * series: AeroDrome's time per event stays flat as the trace (and the
 * number of live transactions) grows, while Velodrome's grows roughly
 * linearly in the number of transactions (quadratic total time) on
 * workloads whose graph survives garbage collection.
 *
 * Three series are printed (events, total time, ns/event for both
 * checkers):
 *   - star:        Velodrome's pathological regime (graph + successor
 *                  sets grow);
 *   - pipeline:    fully GC-collectible graph — both linear, constant
 *                  gap;
 *   - independent: no cross-thread conflicts at all — pure per-event
 *                  overhead of each analysis.
 *
 * Usage: bench_scaling [--budget SECONDS] [--points N]
 */

#include <cstdio>
#include <string>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/str.hpp"
#include "velodrome/velodrome.hpp"
#include "velodrome/velodrome_pk.hpp"

namespace {

using namespace aero;

struct Args {
    double budget = 10.0;
    int points = 5;
};

void
run_series(const char* name, const std::vector<Trace>& traces,
           double budget)
{
    std::printf("\n-- %s --\n", name);
    std::printf("%12s  %12s  %10s  %12s  %10s  %12s  %10s  %8s\n",
                "events", "velo(s)", "velo ns/ev", "pk(s)", "pk ns/ev",
                "aero(s)", "aero ns/ev", "velo/aero");
    for (const Trace& t : traces) {
        RunBudget rb;
        rb.max_seconds = budget;

        Velodrome velo(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult vr = run_checker(velo, t, rb);

        VelodromePK pk(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult pr = run_checker(pk, t, rb);

        AeroDromeOpt aero(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult ar = run_checker(aero, t, rb);

        auto per_event = [](const RunResult& r) {
            return r.events_processed
                       ? r.seconds * 1e9 /
                             static_cast<double>(r.events_processed)
                       : 0;
        };
        auto cell = [](const RunResult& r, char* buf, size_t n) {
            if (r.timed_out)
                std::snprintf(buf, n, "TO(%.1fs)", r.seconds);
            else
                std::snprintf(buf, n, "%.4f", r.seconds);
        };
        char velo_cell[32], pk_cell[32];
        cell(vr, velo_cell, sizeof(velo_cell));
        cell(pr, pk_cell, sizeof(pk_cell));
        std::printf("%12s  %12s  %10.1f  %12s  %10.1f  %12.4f  %10.1f  "
                    "%8.1f\n",
                    with_commas(t.size()).c_str(), velo_cell,
                    per_event(vr), pk_cell, per_event(pr), ar.seconds,
                    per_event(ar),
                    ar.seconds > 0 ? vr.seconds / ar.seconds : 0);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--budget" && i + 1 < argc)
            args.budget = std::stod(argv[++i]);
        else if (a == "--points" && i + 1 < argc)
            args.points = std::stoi(argv[++i]);
    }

    std::printf("Scaling series: linear-time AeroDrome vs graph-based "
                "Velodrome\n(per-series Velodrome budget: %.3gs)\n",
                args.budget);

    {
        std::vector<Trace> traces;
        uint32_t rounds = 500;
        for (int i = 0; i < args.points; ++i, rounds *= 2) {
            gen::StarOptions opts;
            opts.producers = 2;
            opts.consumers = 2;
            opts.rounds = rounds;
            traces.push_back(gen::make_star(opts));
        }
        run_series("star (graph grows; Velodrome superlinear)", traces,
                   args.budget);
    }
    {
        std::vector<Trace> traces;
        uint32_t rounds = 12500;
        for (int i = 0; i < args.points; ++i, rounds *= 2)
            traces.push_back(gen::make_pipeline(4, rounds));
        run_series("pipeline (GC collects everything; both linear)",
                   traces, args.budget);
    }
    {
        std::vector<Trace> traces;
        uint32_t txns = 5000;
        for (int i = 0; i < args.points; ++i, txns *= 2)
            traces.push_back(gen::make_independent(4, txns, 8));
        run_series("independent (no conflicts; pure per-event overhead)",
                   traces, args.budget);
    }
    std::printf("\nExpected shape: 'aero ns/ev' stays roughly flat in "
                "every series;\n'velo ns/ev' grows with trace size in the "
                "star series only.\n");
    return 0;
}
