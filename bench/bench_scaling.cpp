/**
 * @file
 * Experiment E4 — the paper's headline complexity claim, as a scaling
 * series: AeroDrome's time per event stays flat as the trace (and the
 * number of live transactions) grows, while Velodrome's grows roughly
 * linearly in the number of transactions (quadratic total time) on
 * workloads whose graph survives garbage collection.
 *
 * Three series are printed (events, total time, ns/event for both
 * checkers):
 *   - star:        Velodrome's pathological regime (graph + successor
 *                  sets grow);
 *   - pipeline:    fully GC-collectible graph — both linear, constant
 *                  gap;
 *   - independent: no cross-thread conflicts at all — pure per-event
 *                  overhead of each analysis.
 *
 * A second mode, --shards, sweeps the sharded runner (src/shard/) over
 * drivers x shard counts x merge policies on the ablation workloads and
 * writes BENCH_shards.json: end-to-end wall time, events/s and speedup
 * vs the plain single-engine runner, per workload x engine x driver x
 * shard count, for lockstep (merge_epoch = 1, a barrier per event)
 * against exact epoch mode (periodic merges + divergence barriers) — the
 * headline is epoch mode matching lockstep's verdicts at higher
 * throughput. Each run records the transport block size (batch), the
 * block-transport counters (blocks pushed, partial flushes, average
 * routed-run length), the speedup against the same driver's 1-shard row
 * (speedup_vs_1shard — the number that isolates parallel gain from
 * transport overhead), and the per-event transport tax in ns vs the
 * single-engine baseline. A small batch ablation re-runs the first
 * engine's 2-shard epoch row at batch 1 and 64 against the default 256.
 * Scaling beyond 1x needs at least as many cores as shards; the JSON
 * records hardware_concurrency (and per-row `oversubscribed`) so
 * single-core CI numbers read as what they are.
 *
 * A third mode, --updsets, is the update-set smoke gate: it measures the
 * basic/readopt end-event path (update sets on vs the AERO_UPDATE_SETS=0
 * full sweep) on the var-heavy workloads and *fails* if readopt's
 * throughput falls below a floor derived from the pre-update-set
 * BENCH_shards.json baselines — the CI tripwire for the quadratic end
 * sweep sneaking back in.
 *
 * A fourth mode, --faults, is the fault-injection overhead gate: it
 * times the streaming and sharded paths with the FaultInjector disarmed
 * vs armed-but-idle (a trigger that never fires) and fails if the
 * armed-idle hooks cost more than the floor — the tripwire for a fault
 * hook growing beyond its one-relaxed-load budget.
 *
 * Usage: bench_scaling [--budget SECONDS] [--points N]
 *        bench_scaling --shards [--quick] [--json PATH]
 *                      [--merge-epoch K|end] [--no-merge-barriers]
 *        bench_scaling --updsets [--quick]
 *        bench_scaling --faults [--quick]
 *        bench_scaling --memory [--quick] [--json PATH]
 *        bench_scaling --ingest [--quick] [--json PATH]
 *
 * A fifth mode, --memory, is the reclamation gate: it drives every
 * AeroDrome engine over the rolling stream (gen/rolling_stream.hpp —
 * thread churn + hot-window drift, the unbounded-stream model) once
 * with gc off and once with gc on, writes BENCH_memory.json
 * (events/s, footprint at the midpoint and the end, bytes per live
 * clock entry, reclamation counters), and fails if the gc-on footprint
 * is not flat (end > 1.15x midpoint) or if reclamation costs more than
 * 5% throughput against the gc-off run of the same engine.
 *
 * A sixth mode, --ingest, is the block-ingestion gate for the PR that
 * rebuilt trace reading around next_n blocks: it writes a ~10M-event
 * binary trace (~1M under --quick) to a temp file and records, best of
 * three each, decode-only rows (istream per-event next(), istream
 * batched next_n, read()-buffered batched, mmap batched), end-to-end
 * check rows (in-memory TraceSource vs the mmap file-backed source,
 * both through run_checker_stream), and a decode/route overlap row (the
 * 2-shard threaded driver fed from the mapped file). BENCH_ingest.json
 * gets every row plus the two gates, and the run *fails* if mmap
 * batched decode is under 5x the per-event istream path or the
 * file-backed check is more than 1.3x slower than the in-memory rate.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "gen/rolling_stream.hpp"
#include "shard/sharded_runner.hpp"
#include "support/fault.hpp"
#include "support/stopwatch.hpp"
#include "support/str.hpp"
#include "trace/binary_io.hpp"
#include "trace/mapped_reader.hpp"
#include "trace/stream.hpp"
#include "velodrome/velodrome.hpp"
#include "velodrome/velodrome_pk.hpp"

namespace {

using namespace aero;

struct Args {
    double budget = 10.0;
    int points = 5;
    bool shards_mode = false;
    bool updsets_mode = false;
    bool faults_mode = false;
    bool memory_mode = false;
    bool ingest_mode = false;
    bool quick = false;
    uint64_t merge_epoch = 64;
    bool merge_barriers = true;
    std::string json_path; // per-mode default unless --json is given
};

/** Human/JSON label of a merge configuration. */
std::string
merge_policy_name(uint64_t merge_epoch, bool barriers)
{
    if (merge_epoch == 1)
        return "lockstep";
    if (merge_epoch == 0)
        return "none";
    if (!barriers)
        return "legacy-epoch";
    return merge_epoch == ShardOptions::kMergeEndOnly ? "end-only"
                                                      : "exact-epoch";
}

void
run_series(const char* name, const std::vector<Trace>& traces,
           double budget)
{
    std::printf("\n-- %s --\n", name);
    std::printf("%12s  %12s  %10s  %12s  %10s  %12s  %10s  %8s\n",
                "events", "velo(s)", "velo ns/ev", "pk(s)", "pk ns/ev",
                "aero(s)", "aero ns/ev", "velo/aero");
    for (const Trace& t : traces) {
        RunBudget rb;
        rb.max_seconds = budget;

        Velodrome velo(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult vr = run_checker(velo, t, rb);

        VelodromePK pk(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult pr = run_checker(pk, t, rb);

        AeroDromeOpt aero(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult ar = run_checker(aero, t, rb);

        auto per_event = [](const RunResult& r) {
            return r.events_processed
                       ? r.seconds * 1e9 /
                             static_cast<double>(r.events_processed)
                       : 0;
        };
        auto cell = [](const RunResult& r, char* buf, size_t n) {
            if (r.timed_out)
                std::snprintf(buf, n, "TO(%.1fs)", r.seconds);
            else
                std::snprintf(buf, n, "%.4f", r.seconds);
        };
        char velo_cell[32], pk_cell[32];
        cell(vr, velo_cell, sizeof(velo_cell));
        cell(pr, pk_cell, sizeof(pk_cell));
        std::printf("%12s  %12s  %10.1f  %12s  %10.1f  %12.4f  %10.1f  "
                    "%8.1f\n",
                    with_commas(t.size()).c_str(), velo_cell,
                    per_event(vr), pk_cell, per_event(pr), ar.seconds,
                    per_event(ar),
                    ar.seconds > 0 ? vr.seconds / ar.seconds : 0);
    }
}

// --- Shard sweep (--shards) -------------------------------------------------

struct ShardEngine {
    const char* name;
    EngineFactory factory;
    RunResult (*baseline)(const Trace&);
    /** Single-engine run with end-event update sets disabled (the
     *  AERO_UPDATE_SETS=0 full-sweep ablation); null for engines whose
     *  update sets are structural (opt/tuned). */
    RunResult (*nosets)(const Trace&) = nullptr;
};

template <typename Engine>
RunResult
run_baseline(const Trace& t)
{
    Engine engine(t.num_threads(), t.num_vars(), t.num_locks());
    return run_checker(engine, t);
}

template <typename Engine>
RunResult
run_baseline_nosets(const Trace& t)
{
    Engine engine(t.num_threads(), t.num_vars(), t.num_locks());
    engine.set_update_sets(false);
    return run_checker(engine, t);
}

/** Force update sets ON regardless of the AERO_UPDATE_SETS env — the
 *  --updsets gate measures the mechanism, so the ablation env must not
 *  be able to trip its floor. */
template <typename Engine>
RunResult
run_baseline_sets(const Trace& t)
{
    Engine engine(t.num_threads(), t.num_vars(), t.num_locks());
    engine.set_update_sets(true);
    return run_checker(engine, t);
}

int
run_shard_sweep(const Args& args)
{
    const unsigned cores = std::thread::hardware_concurrency();
    const uint32_t scale = args.quick ? 1 : 4;

    struct Workload {
        const char* name;
        Trace trace;
    };
    std::vector<Workload> workloads;
    // Var-heavy shapes: per-variable state dominates, so partitioning
    // variables divides the hot sweeps (see ROADMAP's quadratic-end
    // note for readopt).
    workloads.push_back({"pipeline", gen::make_pipeline(8, 2500 * scale)});
    workloads.push_back(
        {"independent", gen::make_independent(8, 1250 * scale, 8)});
    workloads.push_back({"mesh", gen::make_reader_mesh(8, 5000 * scale)});
    {
        gen::StarOptions star;
        star.producers = 4;
        star.consumers = 4;
        star.rounds = 1250 * scale;
        workloads.push_back({"star", gen::make_star(star)});
    }

    std::vector<ShardEngine> engines;
    engines.push_back({"aerodrome",
                       [] { return std::make_unique<AeroDromeOpt>(0, 0, 0); },
                       &run_baseline<AeroDromeOpt>, nullptr});
    engines.push_back(
        {"aerodrome-readopt",
         [] { return std::make_unique<AeroDromeReadOpt>(0, 0, 0); },
         &run_baseline<AeroDromeReadOpt>,
         &run_baseline_nosets<AeroDromeReadOpt>});
    engines.push_back(
        {"aerodrome-basic",
         [] { return std::make_unique<AeroDromeBasic>(0, 0, 0); },
         &run_baseline<AeroDromeBasic>,
         &run_baseline_nosets<AeroDromeBasic>});

    const std::string policy =
        merge_policy_name(args.merge_epoch, args.merge_barriers);
    std::printf("Sharded-runner sweep (merge policy %s, epoch %llu, %u "
                "hardware threads)\n",
                policy.c_str(),
                static_cast<unsigned long long>(args.merge_epoch), cores);

    std::string json = "{\n";
    json += "  \"hardware_concurrency\": " + std::to_string(cores) + ",\n";
    // Effective parallelism of every run in this file: shard workers can
    // use at most this many cores, so any "speedup" on an oversubscribed
    // run measures pipeline overhead, not parallel capacity.
    json += "  \"effective_parallelism\": " + std::to_string(cores) + ",\n";
    json += "  \"merge_epoch\": " + std::to_string(args.merge_epoch) +
            ",\n  \"merge_policy\": \"" + policy +
            "\",\n  \"workloads\": [\n";

    for (size_t w = 0; w < workloads.size(); ++w) {
        const Workload& wl = workloads[w];
        std::printf("\n-- %s (%s events) --\n", wl.name,
                    with_commas(wl.trace.size()).c_str());
        std::printf("%20s  %9s  %6s  %6s  %12s  %10s  %12s  %8s  %9s\n",
                    "engine", "driver", "shards", "batch", "policy",
                    "time", "events/s", "speedup", "vs1shard");

        json += "    {\"name\": \"" + std::string(wl.name) +
                "\", \"events\": " + std::to_string(wl.trace.size()) +
                ", \"runs\": [\n";

        bool first_run = true;
        for (size_t ei = 0; ei < engines.size(); ++ei) {
            const ShardEngine& eng = engines[ei];
            RunResult base = eng.baseline(wl.trace);
            auto emit = [&](const char* label, const char* driver,
                            uint32_t shards, uint32_t batch,
                            const char* run_policy, uint64_t merge_epoch,
                            double seconds, const ShardRunResult* r,
                            bool update_sets, double one_shard_seconds) {
                const double events_d =
                    static_cast<double>(wl.trace.size());
                double evs = seconds > 0 ? events_d / seconds : 0;
                double speedup =
                    seconds > 0 ? base.seconds / seconds : 0;
                // Parallel gain isolated from transport overhead: this
                // row against the *same driver's* 1-shard run.
                double vs_1shard = seconds > 0 && one_shard_seconds > 0
                                       ? one_shard_seconds / seconds
                                       : 0;
                // Extra wall-clock per event vs the plain single-engine
                // runner — the transport tax (negative once parallelism
                // pays it back).
                const double tax_ns =
                    events_d > 0 ? (seconds - base.seconds) * 1e9 /
                                       events_d
                                 : 0;
                const double avg_run =
                    r && r->transport_runs
                        ? static_cast<double>(r->transport_run_events) /
                              static_cast<double>(r->transport_runs)
                        : 0;
                // Honesty flag: a run with more shard workers than cores
                // cannot exhibit parallel speedup; say so in the record
                // instead of letting 0.00x rows read as regressions.
                const bool oversubscribed =
                    std::string(driver) == "threaded" && shards > cores;
                if (oversubscribed) {
                    std::fprintf(stderr,
                                 "warning: %s x%u shards on %u core(s) — "
                                 "oversubscribed, speedup is not "
                                 "meaningful\n",
                                 label, shards, cores);
                }
                std::printf("%20s  %9s  %6u  %6u  %12s  %10s  %12.0f  "
                            "%7.2fx  %8.2fx%s\n",
                            label, driver, shards, batch, run_policy,
                            format_duration(seconds).c_str(), evs, speedup,
                            vs_1shard,
                            oversubscribed ? "  (oversub.)" : "");
                char buf[1024];
                std::snprintf(
                    buf, sizeof(buf),
                    "      %s{\"engine\": \"%s\", \"driver\": \"%s\", "
                    "\"shards\": %u, \"batch\": %u, "
                    "\"merge_policy\": \"%s\", \"merge_epoch\": %llu, "
                    "\"seconds\": %.6f, \"events_per_s\": %.0f, "
                    "\"speedup\": %.3f, \"speedup_vs_1shard\": %.3f, "
                    "\"transport_tax_ns_per_event\": %.1f, "
                    "\"merges\": %llu, "
                    "\"barrier_merges\": %llu, \"suspects\": %llu, "
                    "\"replays\": %llu, \"blocks_pushed\": %llu, "
                    "\"partial_flushes\": %llu, \"avg_run_len\": %.1f, "
                    "\"update_sets\": %s, "
                    "\"oversubscribed\": %s}",
                    first_run ? "" : ",", label, driver, shards, batch,
                    run_policy,
                    static_cast<unsigned long long>(merge_epoch), seconds,
                    evs, static_cast<double>(speedup), vs_1shard, tax_ns,
                    static_cast<unsigned long long>(
                        r ? r->frontier_merges : 0),
                    static_cast<unsigned long long>(
                        r ? r->barrier_merges : 0),
                    static_cast<unsigned long long>(r ? r->suspects : 0),
                    static_cast<unsigned long long>(r ? r->replays : 0),
                    static_cast<unsigned long long>(
                        r ? r->blocks_pushed : 0),
                    static_cast<unsigned long long>(
                        r ? r->partial_flushes : 0),
                    avg_run, update_sets ? "true" : "false",
                    oversubscribed ? "true" : "false");
                first_run = false;
                json += buf;
                json += "\n";
            };
            emit(eng.name, "single", 1, 1, "single", 0, base.seconds,
                 nullptr, update_sets_enabled_default(), base.seconds);
            if (eng.nosets) {
                // The AERO_UPDATE_SETS=0 ablation: the pre-PR full-table
                // end sweep, recorded so the update-set win stays
                // measurable from the JSON alone.
                RunResult off = eng.nosets(wl.trace);
                emit(eng.name, "single", 1, 1, "single-nosets", 0,
                     off.seconds, nullptr, false, off.seconds);
            }
            // Same-driver 1-shard anchors: what the sharding machinery
            // itself costs with no parallelism to buy it back. These are
            // the denominators of speedup_vs_1shard.
            ShardOptions one;
            one.shards = 1;
            ShardRunResult r1t = run_sharded(eng.factory, wl.trace, one);
            if (r1t.result.violation != base.violation) {
                std::fprintf(stderr, "verdict mismatch on %s x1 shard!\n",
                             wl.name);
                return 1;
            }
            const double threaded1 = r1t.result.seconds;
            emit(eng.name, "threaded", 1, r1t.batch, "none", 0, threaded1,
                 &r1t, update_sets_enabled_default(), threaded1);
            ShardRunResult r1i =
                run_sharded_inline(eng.factory, wl.trace, one);
            if (r1i.result.violation != base.violation) {
                std::fprintf(stderr, "verdict mismatch on %s x1 shard!\n",
                             wl.name);
                return 1;
            }
            const double inline1 = r1i.result.seconds;
            emit(eng.name, "inline", 1, r1i.batch, "none", 0, inline1,
                 &r1i, update_sets_enabled_default(), inline1);
            for (uint32_t shards : {2u, 4u, 8u}) {
                // Lockstep is the exactness anchor and the throughput
                // bar the configured epoch mode has to clear.
                std::vector<uint64_t> cadences = {1};
                if (args.merge_epoch != 1)
                    cadences.push_back(args.merge_epoch);
                for (uint64_t merge_epoch : cadences) {
                    ShardOptions opts;
                    opts.shards = shards;
                    opts.merge_epoch = merge_epoch;
                    opts.divergence_barriers = args.merge_barriers;
                    ShardRunResult r =
                        run_sharded(eng.factory, wl.trace, opts);
                    if (r.result.violation != base.violation) {
                        std::fprintf(stderr,
                                     "verdict mismatch on %s x%u "
                                     "shards!\n",
                                     wl.name, shards);
                        return 1;
                    }
                    emit(eng.name, "threaded", shards, r.batch,
                         merge_policy_name(merge_epoch,
                                           args.merge_barriers)
                             .c_str(),
                         merge_epoch, r.result.seconds, &r,
                         update_sets_enabled_default(), threaded1);
                }
                // The inline driver at the configured epoch policy: the
                // same routing/merge/verdict logic with no queues or
                // threads — the transport-free ceiling.
                {
                    ShardOptions opts;
                    opts.shards = shards;
                    opts.merge_epoch = args.merge_epoch;
                    opts.divergence_barriers = args.merge_barriers;
                    ShardRunResult r =
                        run_sharded_inline(eng.factory, wl.trace, opts);
                    if (r.result.violation != base.violation) {
                        std::fprintf(stderr,
                                     "verdict mismatch on %s x%u "
                                     "shards!\n",
                                     wl.name, shards);
                        return 1;
                    }
                    emit(eng.name, "inline", shards, r.batch,
                         merge_policy_name(args.merge_epoch,
                                           args.merge_barriers)
                             .c_str(),
                         args.merge_epoch, r.result.seconds, &r,
                         update_sets_enabled_default(), inline1);
                }
            }
            // Batch ablation (first engine only): the 2-shard epoch row
            // at block sizes 1 and 64, against the default-256 row above.
            if (ei == 0 && args.merge_epoch != 1) {
                for (uint32_t b : {1u, 64u}) {
                    ShardOptions opts;
                    opts.shards = 2;
                    opts.merge_epoch = args.merge_epoch;
                    opts.divergence_barriers = args.merge_barriers;
                    opts.batch_size = b;
                    ShardRunResult r =
                        run_sharded(eng.factory, wl.trace, opts);
                    if (r.result.violation != base.violation) {
                        std::fprintf(stderr,
                                     "verdict mismatch on %s x2 shards "
                                     "batch %u!\n",
                                     wl.name, b);
                        return 1;
                    }
                    emit(eng.name, "threaded", 2, b,
                         merge_policy_name(args.merge_epoch,
                                           args.merge_barriers)
                             .c_str(),
                         args.merge_epoch, r.result.seconds, &r,
                         update_sets_enabled_default(), threaded1);
                }
            }
        }
        json += w + 1 < workloads.size() ? "    ]},\n" : "    ]}\n";
    }
    json += "  ]\n}\n";

    const std::string shards_path =
        args.json_path.empty() ? "BENCH_shards.json" : args.json_path;
    std::FILE* f = std::fopen(shards_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", shards_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", shards_path.c_str());
    if (cores < 2) {
        std::printf("note: %u hardware thread(s) — shard workers "
                    "serialize; speedups reflect pipeline overhead, not "
                    "parallel capacity.\n",
                    cores);
    }
    return 0;
}

// --- Update-set smoke gate (--updsets) --------------------------------------

/**
 * Measure the basic/readopt end-event path on the var-heavy workloads
 * with update sets on vs off, and fail loudly when readopt's throughput
 * drops below 10x the pre-update-set baseline recorded in
 * BENCH_shards.json (shards=1: 12,207 events/s on pipeline, 42,332 on
 * star) — the regression tripwire for the quadratic end sweep.
 */
int
run_updsets_smoke(const Args& args)
{
    const uint32_t scale = args.quick ? 1 : 4;
    struct Workload {
        const char* name;
        Trace trace;
        double readopt_floor; // events/s, 10x the recorded baseline
    };
    std::vector<Workload> workloads;
    workloads.push_back(
        {"pipeline", gen::make_pipeline(8, 2500 * scale), 122070.0});
    {
        gen::StarOptions star;
        star.producers = 4;
        star.consumers = 4;
        star.rounds = 1250 * scale;
        workloads.push_back({"star", gen::make_star(star), 423320.0});
    }

    std::printf("Update-set smoke gate (end-event sweep: sets vs full "
                "table)\n");
    std::printf("%10s  %20s  %14s  %14s  %8s\n", "workload", "engine",
                "sets on ev/s", "sets off ev/s", "win");
    bool ok = true;
    for (const Workload& wl : workloads) {
        struct Row {
            const char* name;
            RunResult (*on)(const Trace&);
            RunResult (*off)(const Trace&);
            bool gated;
        };
        const Row rows[] = {
            {"aerodrome-readopt", &run_baseline_sets<AeroDromeReadOpt>,
             &run_baseline_nosets<AeroDromeReadOpt>, true},
            {"aerodrome-basic", &run_baseline_sets<AeroDromeBasic>,
             &run_baseline_nosets<AeroDromeBasic>, false},
        };
        for (const Row& row : rows) {
            RunResult on = row.on(wl.trace);
            RunResult off = row.off(wl.trace);
            auto evs = [&](const RunResult& r) {
                return r.seconds > 0
                           ? static_cast<double>(wl.trace.size()) /
                                 r.seconds
                           : 0.0;
            };
            const double evs_on = evs(on);
            const double evs_off = evs(off);
            std::printf("%10s  %20s  %14.0f  %14.0f  %7.1fx\n", wl.name,
                        row.name, evs_on, evs_off,
                        evs_off > 0 ? evs_on / evs_off : 0.0);
            if (row.gated && evs_on < wl.readopt_floor) {
                std::fprintf(stderr,
                             "FAIL: %s on %s ran at %.0f events/s, below "
                             "the %.0f events/s floor (10x the recorded "
                             "pre-update-set baseline)\n",
                             row.name, wl.name, evs_on, wl.readopt_floor);
                ok = false;
            }
        }
    }
    if (ok)
        std::printf("update-set smoke gate passed\n");
    return ok ? 0 : 1;
}

// --- Memory/reclamation gate (--memory) -------------------------------------

struct MemoryRow {
    std::string engine;
    bool gc = false;
    double seconds = 0;
    uint64_t events = 0;
    size_t mem_mid = 0;
    size_t mem_end = 0;
    StatList counters;
};

uint64_t
counter_value(const StatList& counters, const char* key)
{
    for (const auto& [k, v] : counters)
        if (k == key)
            return v;
    return 0;
}

/** The soak-shaped rolling stream every engine is measured on. */
gen::RollingStreamOptions
memory_stream_opts(uint64_t max_events)
{
    gen::RollingStreamOptions so;
    so.workers = 8;
    so.churn_every = 1024;
    so.vars = 2048;
    so.hot_window = 256;
    so.drift_every = 4096;
    so.locks = 8;
    so.max_events = max_events;
    return so;
}

template <typename Engine>
MemoryRow
run_memory_pass(bool gc, uint64_t n)
{
    gen::RollingStreamSource src(memory_stream_opts(n));
    Engine e(0, 0, 0);
    e.set_gc(gc);

    MemoryRow row;
    row.engine = e.name();
    row.gc = gc;
    Event ev;
    uint64_t i = 0;
    const auto start = std::chrono::steady_clock::now();
    while (src.next(ev)) {
        if (e.process(ev, i)) {
            std::fprintf(stderr,
                         "BUG: violation on the violation-free stream\n");
            break;
        }
        if (++i == n / 2)
            row.mem_mid = e.memory_bytes();
    }
    row.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    row.events = i;
    row.mem_end = e.memory_bytes();
    row.counters = e.counters();
    return row;
}

/** Best wall-clock of three passes (memory numbers are deterministic,
 *  so any pass's footprint is THE footprint; only time is noisy). */
template <typename Engine>
MemoryRow
best_memory_pass(bool gc, uint64_t n, int reps)
{
    MemoryRow best = run_memory_pass<Engine>(gc, n);
    for (int i = 1; i < reps; ++i) {
        MemoryRow r = run_memory_pass<Engine>(gc, n);
        if (r.seconds < best.seconds)
            best = r;
    }
    return best;
}

void
append_memory_row(std::string& json, const MemoryRow& r, double evs,
                  double overhead_pct, double flat_ratio, bool last)
{
    const uint64_t live =
        counter_value(r.counters, "gc_live_entries");
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"engine\": \"%s\", \"gc\": %s, \"events\": %llu, "
        "\"seconds\": %.4f, \"events_per_s\": %.0f, "
        "\"memory_mid_bytes\": %zu, \"memory_end_bytes\": %zu, "
        "\"flat_ratio\": %.3f, \"bytes_per_live_entry\": %.1f, "
        "\"gc_overhead_pct\": %.2f, "
        "\"gc_sweeps\": %llu, \"gc_reclaimed\": %llu, "
        "\"gc_rows_freed\": %llu, \"gc_live_entries\": %llu, "
        "\"slots_retired\": %llu, \"slots_recycled\": %llu}%s\n",
        r.engine.c_str(), r.gc ? "true" : "false",
        static_cast<unsigned long long>(r.events), r.seconds, evs,
        r.mem_mid, r.mem_end, flat_ratio,
        live ? static_cast<double>(r.mem_end) / static_cast<double>(live)
             : 0.0,
        overhead_pct,
        static_cast<unsigned long long>(
            counter_value(r.counters, "gc_sweeps")),
        static_cast<unsigned long long>(
            counter_value(r.counters, "gc_reclaimed")),
        static_cast<unsigned long long>(
            counter_value(r.counters, "gc_rows_freed")),
        static_cast<unsigned long long>(live),
        static_cast<unsigned long long>(
            counter_value(r.counters, "slots_retired")),
        static_cast<unsigned long long>(
            counter_value(r.counters, "slots_recycled")),
        last ? "" : ",");
    json += buf;
}

template <typename Engine>
bool
run_memory_engine(std::string& json, uint64_t n, int reps, bool last)
{
    const MemoryRow off = best_memory_pass<Engine>(false, n, reps);
    const MemoryRow on = best_memory_pass<Engine>(true, n, reps);

    auto evs = [](const MemoryRow& r) {
        return r.seconds > 0
                   ? static_cast<double>(r.events) / r.seconds
                   : 0.0;
    };
    const double evs_off = evs(off);
    const double evs_on = evs(on);
    const double overhead_pct =
        evs_off > 0 ? (evs_off - evs_on) / evs_off * 100.0 : 0.0;
    auto flat = [](const MemoryRow& r) {
        return r.mem_mid
                   ? static_cast<double>(r.mem_end) /
                         static_cast<double>(r.mem_mid)
                   : 0.0;
    };

    append_memory_row(json, off, evs_off, 0.0, flat(off), false);
    append_memory_row(json, on, evs_on, overhead_pct, flat(on), last);

    std::printf("%10s  gc=off %9.0f ev/s  end %11s B | gc=on %9.0f "
                "ev/s  end %11s B  flat %.3f  overhead %+.1f%%\n",
                off.engine.c_str(), evs_off,
                with_commas(off.mem_end).c_str(), evs_on,
                with_commas(on.mem_end).c_str(), flat(on), overhead_pct);

    bool ok = true;
    if (flat(on) > 1.15) {
        std::fprintf(stderr,
                     "FAIL: %s gc-on footprint is not flat "
                     "(mid %zu -> end %zu bytes, ratio %.3f > 1.15)\n",
                     on.engine.c_str(), on.mem_mid, on.mem_end, flat(on));
        ok = false;
    }
    if (overhead_pct > 5.0) {
        std::fprintf(stderr,
                     "FAIL: %s reclamation costs %.1f%% throughput "
                     "(>5%% floor) on the rolling stream\n",
                     on.engine.c_str(), overhead_pct);
        ok = false;
    }
    if (counter_value(on.counters, "slots_recycled") == 0 ||
        counter_value(on.counters, "gc_sweeps") == 0) {
        std::fprintf(stderr,
                     "FAIL: %s gc-on run never recycled a slot or "
                     "swept — the gates above measured nothing\n",
                     on.engine.c_str());
        ok = false;
    }
    return ok;
}

int
run_memory_bench(const Args& args)
{
    const uint64_t n = args.quick ? 200000 : 1000000;
    const int reps = 3;
    const gen::RollingStreamOptions so = memory_stream_opts(n);

    std::printf("Reclamation gate: rolling stream, %s events "
                "(churn every %u, drift every %u)\n",
                with_commas(n).c_str(), so.churn_every, so.drift_every);

    std::string json = "{\n";
    char head[256];
    std::snprintf(head, sizeof(head),
                  "  \"events\": %llu, \"workers\": %u, "
                  "\"churn_every\": %u, \"drift_every\": %u, "
                  "\"vars\": %u, \"hot_window\": %u,\n  \"rows\": [\n",
                  static_cast<unsigned long long>(n), so.workers,
                  so.churn_every, so.drift_every, so.vars, so.hot_window);
    json += head;

    bool ok = true;
    ok &= run_memory_engine<AeroDromeBasic>(json, n, reps, false);
    ok &= run_memory_engine<AeroDromeReadOpt>(json, n, reps, false);
    ok &= run_memory_engine<AeroDromeOpt>(json, n, reps, false);
    ok &= run_memory_engine<AeroDromeTuned>(json, n, reps, true);
    json += "  ]\n}\n";

    const std::string path =
        args.json_path.empty() ? "BENCH_memory.json" : args.json_path;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    if (ok)
        std::printf("memory gate passed\n");
    return ok ? 0 : 1;
}

// --- Block-ingestion gate (--ingest) ----------------------------------------

struct IngestRow {
    const char* name;
    double seconds = 0;
    double events_per_s = 0;
};

/** Best wall-clock of three runs of `fn` (which returns seconds). */
double
ingest_best_of3(const std::function<double()>& fn)
{
    double best = fn();
    for (int i = 0; i < 2; ++i) {
        const double s = fn();
        if (s < best)
            best = s;
    }
    return best;
}

/**
 * The block-ingestion gate: decode-only, decode+check, and
 * decode/route-overlap rates over one large binary trace on disk, with
 * the two floors from the PR that introduced MappedBinaryEventSource.
 */
int
run_ingest_bench(const Args& args)
{
    const uint64_t target = args.quick ? 1000000 : 10000000;

    // Size a pipeline workload to ~target events: probe the events-per-
    // round rate on a small instance, then scale the round count.
    const Trace probe = gen::make_pipeline(8, 100);
    const double per_round = static_cast<double>(probe.size()) / 100.0;
    const uint32_t rounds =
        static_cast<uint32_t>(static_cast<double>(target) / per_round);
    const Trace trace = gen::make_pipeline(8, rounds);
    const uint64_t events = trace.size();

    const std::string path = "/tmp/aero_bench_ingest_" +
                             std::to_string(::getpid()) + ".bin";
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        write_binary(f, trace);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
    }

    std::printf("Block-ingestion gate: %s events, %s on disk\n",
                with_commas(events).c_str(), path.c_str());

    auto drain_events = [&events](EventSource& src, size_t block) {
        std::vector<Event> buf(block);
        Stopwatch watch;
        uint64_t n = 0;
        for (;;) {
            const size_t got = src.next_n(buf.data(), block);
            if (got == 0)
                break;
            n += got;
        }
        if (n != events) {
            std::fprintf(stderr, "BUG: decoded %llu of %llu events\n",
                         static_cast<unsigned long long>(n),
                         static_cast<unsigned long long>(events));
            std::exit(1);
        }
        return watch.elapsed_seconds();
    };

    std::vector<IngestRow> rows;
    auto add_row = [&](const char* name,
                       const std::function<double()>& fn) {
        IngestRow row;
        row.name = name;
        row.seconds = ingest_best_of3(fn);
        row.events_per_s = row.seconds > 0
                               ? static_cast<double>(events) / row.seconds
                               : 0;
        rows.push_back(row);
        std::printf("%24s  %10s  %14s ev/s\n", row.name,
                    format_duration(row.seconds).c_str(),
                    with_commas(static_cast<uint64_t>(row.events_per_s))
                        .c_str());
        return row.events_per_s;
    };

    // Decode-only: per-event reference, then the batched paths.
    const double evs_per_event = add_row("decode-istream-next", [&] {
        std::ifstream in(path, std::ios::binary);
        BinaryEventSource src(in);
        Stopwatch watch;
        Event e;
        uint64_t n = 0;
        while (src.next(e))
            ++n;
        if (n != events)
            std::exit(1);
        return watch.elapsed_seconds();
    });
    add_row("decode-istream-batched", [&] {
        std::ifstream in(path, std::ios::binary);
        BinaryEventSource src(in);
        return drain_events(src, kDefaultIngestBlock);
    });
    add_row("decode-buffered-batched", [&] {
        std::ifstream in(path, std::ios::binary);
        MappedBinaryEventSource src(in);
        return drain_events(src, kDefaultIngestBlock);
    });
    const double evs_mmap = add_row("decode-mmap-batched", [&] {
        MappedBinaryEventSource src(path);
        if (!src.is_mapped())
            std::fprintf(stderr, "note: mmap unavailable, buffered run\n");
        return drain_events(src, kDefaultIngestBlock);
    });

    // End-to-end: the same checker fed from memory vs from the file.
    auto checked_seconds = [&events](EventSource& src) {
        AeroDromeOpt engine(0, 0, 0);
        RunResult r = run_checker_stream(engine, src);
        if (r.violation || r.events_processed != events) {
            std::fprintf(stderr, "BUG: check run ended early (%llu)\n",
                         static_cast<unsigned long long>(
                             r.events_processed));
            std::exit(1);
        }
        return r.seconds;
    };
    const double evs_check_mem = add_row("check-in-memory", [&] {
        TraceSource src(trace);
        return checked_seconds(src);
    });
    const double evs_check_file = add_row("check-file-mmap", [&] {
        MappedBinaryEventSource src(path);
        return checked_seconds(src);
    });

    // Overlap: the threaded sharded driver double-buffers decode against
    // route_chunk, so file-backed sharding should not pay full decode
    // latency on the critical path.
    add_row("overlap-sharded-x2", [&] {
        MappedBinaryEventSource src(path);
        ShardOptions opts;
        opts.shards = 2;
        ShardRunResult r = run_sharded(
            [] { return std::make_unique<AeroDromeOpt>(0, 0, 0); }, src,
            opts);
        if (r.result.violation ||
            r.result.events_processed != events)
            std::exit(1);
        return r.result.seconds;
    });

    // The two gates this PR claims.
    bool ok = true;
    const double decode_ratio =
        evs_per_event > 0 ? evs_mmap / evs_per_event : 0;
    if (decode_ratio < 5.0) {
        std::fprintf(stderr,
                     "FAIL: mmap batched decode is %.2fx the per-event "
                     "istream path (< 5x floor)\n",
                     decode_ratio);
        ok = false;
    }
    const double check_ratio =
        evs_check_file > 0 ? evs_check_mem / evs_check_file : 0;
    if (check_ratio > 1.3) {
        std::fprintf(stderr,
                     "FAIL: file-backed check runs %.2fx slower than "
                     "in-memory (> 1.3x floor)\n",
                     check_ratio);
        ok = false;
    }
    std::printf("gates: mmap/per-event decode %.2fx (floor 5x), "
                "in-memory/file check %.2fx (ceiling 1.3x)\n",
                decode_ratio, check_ratio);

    std::string json = "{\n  \"events\": " + std::to_string(events) +
                       ",\n  \"block\": " +
                       std::to_string(kDefaultIngestBlock) +
                       ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"seconds\": %.4f, "
                      "\"events_per_s\": %.0f}%s\n",
                      rows[i].name, rows[i].seconds, rows[i].events_per_s,
                      i + 1 < rows.size() ? "," : "");
        json += buf;
    }
    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  "  ],\n  \"gates\": {\"mmap_vs_per_event_decode\": "
                  "%.3f, \"decode_floor\": 5.0, "
                  "\"in_memory_vs_file_check\": %.3f, "
                  "\"check_ceiling\": 1.3, \"passed\": %s}\n}\n",
                  decode_ratio, check_ratio, ok ? "true" : "false");
    json += tail;

    const std::string out =
        args.json_path.empty() ? "BENCH_ingest.json" : args.json_path;
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        std::remove(path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    std::remove(path.c_str());
    if (ok)
        std::printf("ingest gate passed\n");
    return ok ? 0 : 1;
}

// --- Fault-overhead smoke (--faults) ----------------------------------------

/**
 * Measure what the fault-injection hooks cost on the two instrumented
 * hot paths — single-engine binary streaming (the per-byte kTraceByte
 * hooks, compile-gated behind -DAERO_FAULTS) and the sharded pipeline
 * (the always-compiled kWorker hooks) — in two states: injector disarmed
 * and armed-idle (a plan whose trigger of UINT64_MAX never fires, so
 * every hook runs its full check-and-skip path). Best-of-3 each; the
 * armed-idle : disarmed ratio is the per-hook overhead. Each path gates
 * on its own floor: 10% for the single-threaded stream path (the
 * disarmed design target is <=1% — one relaxed load — so 10% absorbs CI
 * timer noise; 25% when the per-byte hooks are compiled in, since armed
 * trigger accounting then runs per input byte), 35% for the sharded
 * path, where an armed kWorker plan
 * with shard=any makes every worker fetch_add one shared hit counter
 * per popped item (deliberate: exact trigger accounting needs a total
 * order over pops) — real cache-line contention that only exists while
 * a fault drill is armed.
 */
int
run_faults_smoke(const Args& args)
{
    const uint32_t scale = args.quick ? 2 : 8;
    const Trace trace = gen::make_pipeline(8, 2500 * scale);
    std::ostringstream blob;
    write_binary(blob, trace);
    const std::string bytes = blob.str();

    auto stream_once = [&bytes]() {
        std::istringstream in(bytes, std::ios::binary);
        BinaryEventSource src(in);
        AeroDromeOpt engine(0, 0, 0);
        return run_checker_stream(engine, src).seconds;
    };
    auto sharded_once = [&trace]() {
        ShardOptions opts;
        opts.shards = 2;
        ShardRunResult r = run_sharded(
            [] { return std::make_unique<AeroDromeOpt>(0, 0, 0); }, trace,
            opts);
        return r.result.seconds;
    };
    auto best_of3 = [](const std::function<double()>& run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            const double s = run();
            if (s < best)
                best = s;
        }
        return best;
    };

    FaultInjector& inj = FaultInjector::instance();
    inj.disarm();

    std::printf("Fault-overhead smoke (per-byte hooks compiled: %s)\n",
                fault_points_compiled() ? "yes" : "no");
    std::printf("%10s  %14s  %14s  %8s\n", "path", "disarmed ev/s",
                "armed-idle ev/s", "delta");

    struct PathRow {
        const char* name;
        std::function<double()> run;
        FaultPlan idle; // trigger UINT64_MAX: checked every hit, never fires
        double floor;   // max tolerated armed-idle throughput drop
    };
    std::vector<PathRow> paths;
    {
        FaultPlan p;
        p.site = FaultSite::kTraceByte;
        p.kind = FaultKind::kBitFlip;
        p.trigger = UINT64_MAX;
        // Without the compiled per-byte hooks the armed plan touches
        // nothing on this path and the delta is pure timer noise; with
        // them, armed trigger accounting is a fetch_add per input byte
        // (~3 bytes/event), worth ~10% while a drill is armed.
        paths.push_back({"stream", stream_once, p,
                         fault_points_compiled() ? 0.25 : 0.10});
    }
    {
        FaultPlan p;
        p.site = FaultSite::kWorker;
        p.kind = FaultKind::kWorkerDelay;
        p.trigger = UINT64_MAX;
        paths.push_back({"sharded", sharded_once, p, 0.35});
    }

    bool ok = true;
    for (const PathRow& path : paths) {
        const double disarmed = best_of3(path.run);
        inj.arm(path.idle);
        const double armed = best_of3(path.run);
        inj.disarm();
        if (inj.fires() != 0) {
            std::fprintf(stderr,
                         "FAIL: armed-idle plan fired %llu time(s) on "
                         "%s — trigger accounting is broken\n",
                         static_cast<unsigned long long>(inj.fires()),
                         path.name);
            ok = false;
        }
        auto evs = [&trace](double s) {
            return s > 0 ? static_cast<double>(trace.size()) / s : 0.0;
        };
        const double evs_off = evs(disarmed);
        const double evs_idle = evs(armed);
        const double delta =
            evs_off > 0 ? (evs_off - evs_idle) / evs_off : 0.0;
        std::printf("%10s  %14.0f  %14.0f  %+7.1f%%\n", path.name, evs_off,
                    evs_idle, -delta * 100.0);
        if (delta > path.floor) {
            std::fprintf(stderr,
                         "FAIL: armed-idle throughput on the %s path "
                         "dropped %.1f%% (>%.0f%% floor) — a fault hook "
                         "got expensive\n",
                         path.name, delta * 100.0, path.floor * 100.0);
            ok = false;
        }
    }
    if (ok)
        std::printf("fault-overhead smoke passed\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--budget" && i + 1 < argc)
            args.budget = std::stod(argv[++i]);
        else if (a == "--points" && i + 1 < argc)
            args.points = std::stoi(argv[++i]);
        else if (a == "--shards")
            args.shards_mode = true;
        else if (a == "--updsets")
            args.updsets_mode = true;
        else if (a == "--faults")
            args.faults_mode = true;
        else if (a == "--memory")
            args.memory_mode = true;
        else if (a == "--ingest")
            args.ingest_mode = true;
        else if (a == "--quick")
            args.quick = true;
        else if (a == "--merge-epoch" && i + 1 < argc) {
            // Same grammar as aerocheck: "end" or a bounded decimal.
            const char* v = argv[++i];
            if (std::string(v) == "end") {
                args.merge_epoch = ShardOptions::kMergeEndOnly;
            } else {
                char* end = nullptr;
                unsigned long long n = std::strtoull(v, &end, 10);
                if (v[0] == '\0' || v[0] == '-' || !end || *end != '\0' ||
                    n > (1ull << 30)) {
                    std::fprintf(stderr, "bad --merge-epoch '%s'\n", v);
                    return 2;
                }
                args.merge_epoch = n;
            }
        } else if (a == "--no-merge-barriers")
            args.merge_barriers = false;
        else if (a == "--json" && i + 1 < argc)
            args.json_path = argv[++i];
    }
    if (args.ingest_mode)
        return run_ingest_bench(args);
    if (args.memory_mode)
        return run_memory_bench(args);
    if (args.faults_mode)
        return run_faults_smoke(args);
    if (args.updsets_mode)
        return run_updsets_smoke(args);
    if (args.shards_mode)
        return run_shard_sweep(args);

    std::printf("Scaling series: linear-time AeroDrome vs graph-based "
                "Velodrome\n(per-series Velodrome budget: %.3gs)\n",
                args.budget);

    {
        std::vector<Trace> traces;
        uint32_t rounds = 500;
        for (int i = 0; i < args.points; ++i, rounds *= 2) {
            gen::StarOptions opts;
            opts.producers = 2;
            opts.consumers = 2;
            opts.rounds = rounds;
            traces.push_back(gen::make_star(opts));
        }
        run_series("star (graph grows; Velodrome superlinear)", traces,
                   args.budget);
    }
    {
        std::vector<Trace> traces;
        uint32_t rounds = 12500;
        for (int i = 0; i < args.points; ++i, rounds *= 2)
            traces.push_back(gen::make_pipeline(4, rounds));
        run_series("pipeline (GC collects everything; both linear)",
                   traces, args.budget);
    }
    {
        std::vector<Trace> traces;
        uint32_t txns = 5000;
        for (int i = 0; i < args.points; ++i, txns *= 2)
            traces.push_back(gen::make_independent(4, txns, 8));
        run_series("independent (no conflicts; pure per-event overhead)",
                   traces, args.budget);
    }
    std::printf("\nExpected shape: 'aero ns/ev' stays roughly flat in "
                "every series;\n'velo ns/ev' grows with trace size in the "
                "star series only.\n");
    return 0;
}
