/**
 * @file
 * Experiment E7 — microbenchmarks backing Theorem 4's cost model: every
 * non-end event costs O(|Thr|) (one vector-clock comparison + join), and
 * end events cost O(|Thr| + L + V') where V' is the update-set size.
 *
 * Two parts:
 *
 *  1. A standalone kernel comparison, ClockBank arena kernels vs. the
 *     scalar VectorClock baseline, swept over clock dimensions. The sweep
 *     mimics the engines' hot loops (end-event propagation: join/compare
 *     one clock against a whole family), so it exercises the contiguous
 *     layout, not just a single cached pair. Results are written to
 *     BENCH_vc_ops.json (override with --json PATH) for the perf
 *     trajectory.
 *
 *  2. The usual google-benchmark suite; run with --benchmark_filter=...
 *     as usual. Pass --no-gbench to skip it.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/stopwatch.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/clock_bank.hpp"
#include "vc/vector_clock.hpp"

namespace {

using namespace aero;

VectorClock
make_clock(size_t dim, uint32_t salt)
{
    VectorClock v(dim);
    for (size_t i = 0; i < dim; ++i)
        v.set(i, static_cast<ClockValue>((i * 2654435761u + salt) % 97));
    return v;
}

// --- Part 1: kernel comparison, bank vs. scalar ---------------------------

struct KernelResult {
    size_t dim = 0;
    double scalar_ns = 0; ///< ns per clock-pair operation, scalar layout
    double bank_ns = 0;   ///< ns per clock-pair operation, bank layout
    double
    speedup() const
    {
        return bank_ns > 0 ? scalar_ns / bank_ns : 0;
    }
};

/** Clocks per family in the sweep: large enough to stream across rows,
 *  small enough to stay cache-resident so the comparison measures the
 *  kernels (compute + per-clock overheads), not DRAM bandwidth. */
constexpr size_t kFamily = 256;

/** Repeat `body()` until it has consumed ~`min_seconds`, and take the
 *  best of three timed passes (the standard defense against scheduler
 *  noise on shared machines); return ns per inner operation given
 *  `ops_per_call`. */
template <typename F>
double
time_ns_per_op(F&& body, size_t ops_per_call, double min_seconds = 0.1)
{
    // Warm up once, then scale the repeat count to the budget.
    Stopwatch warm;
    body();
    double once = warm.elapsed_seconds();
    size_t reps = once > 0 ? static_cast<size_t>(min_seconds / once) + 1 : 64;
    double best = 0;
    for (int pass = 0; pass < 3; ++pass) {
        Stopwatch watch;
        for (size_t r = 0; r < reps; ++r)
            body();
        double total = watch.elapsed_seconds();
        if (pass == 0 || total < best)
            best = total;
    }
    return best / static_cast<double>(reps) /
           static_cast<double>(ops_per_call) * 1e9;
}

/** A family of kFamily distinct clocks in the scalar layout. */
std::vector<VectorClock>
make_family(size_t dim)
{
    std::vector<VectorClock> family;
    for (size_t i = 0; i < kFamily; ++i)
        family.push_back(make_clock(dim, static_cast<uint32_t>(i)));
    return family;
}

/** A bank with rows 0..kFamily-1 mirroring `family` (row kFamily spare). */
ClockBank
make_bank(const std::vector<VectorClock>& family, size_t dim)
{
    ClockBank bank(kFamily + 1, dim);
    for (size_t i = 0; i < kFamily; ++i) {
        for (size_t d = 0; d < dim; ++d)
            bank[i].set(d, family[i].get(d));
    }
    return bank;
}

/** Join sweep: fold every clock of a family into one accumulator — the
 *  shape of end-event propagation and of R_x/W_x maintenance. */
KernelResult
bench_join(size_t dim)
{
    KernelResult r;
    r.dim = dim;

    std::vector<VectorClock> scalar = make_family(dim);
    VectorClock sacc(dim);
    r.scalar_ns = time_ns_per_op(
        [&] {
            for (const auto& v : scalar)
                sacc.join(v);
            benchmark::DoNotOptimize(sacc);
        },
        kFamily);

    ClockBank bank = make_bank(scalar, dim);
    ClockRef bacc = bank[kFamily];
    r.bank_ns = time_ns_per_op(
        [&] {
            for (size_t i = 0; i < kFamily; ++i)
                bacc.join(bank[i]);
            benchmark::DoNotOptimize(bank);
        },
        kFamily);
    return r;
}

/** Leq sweep: compare one clock against a whole family. The probe clock
 *  is below every family member, so neither implementation can take an
 *  early exit — this measures full-scan comparison throughput. */
KernelResult
bench_leq(size_t dim)
{
    KernelResult r;
    r.dim = dim;

    std::vector<VectorClock> scalar = make_family(dim);
    for (auto& v : scalar) {
        for (size_t d = 0; d < dim; ++d)
            v.set(d, v.get(d) + 100); // keep the probe below the family
    }
    VectorClock sprobe = make_clock(dim, 7);
    bool sink = false;
    r.scalar_ns = time_ns_per_op(
        [&] {
            for (const auto& v : scalar)
                sink ^= sprobe.leq(v);
            benchmark::DoNotOptimize(sink);
        },
        kFamily);

    ClockBank bank = make_bank(scalar, dim);
    ClockRef bprobe = bank[kFamily];
    for (size_t d = 0; d < dim; ++d)
        bprobe.set(d, sprobe.get(d));
    r.bank_ns = time_ns_per_op(
        [&] {
            ConstClockRef probe = bank[kFamily];
            for (size_t i = 0; i < kFamily; ++i)
                sink ^= probe.leq(bank[i]);
            benchmark::DoNotOptimize(sink);
        },
        kFamily);
    return r;
}

/** join_except sweep (the hR_x update kernel). */
KernelResult
bench_join_except(size_t dim)
{
    KernelResult r;
    r.dim = dim;

    std::vector<VectorClock> scalar = make_family(dim);
    VectorClock sacc(dim);
    r.scalar_ns = time_ns_per_op(
        [&] {
            for (const auto& v : scalar)
                sacc.join_except(v, dim / 2);
            benchmark::DoNotOptimize(sacc);
        },
        kFamily);

    ClockBank bank = make_bank(scalar, dim);
    ClockRef bacc = bank[kFamily];
    r.bank_ns = time_ns_per_op(
        [&] {
            for (size_t i = 0; i < kFamily; ++i)
                bacc.join_except(bank[i], dim / 2);
            benchmark::DoNotOptimize(bank);
        },
        kFamily);
    return r;
}

/** The end-event sweep micro-kernel: one completed transaction's
 *  gate-and-join over an AdaptiveClockTable of `entries` entries, as the
 *  full-table pass vs the update-window pass (8 enrolled entries — a
 *  typical transaction footprint). The ratio is the per-end win of the
 *  update sets at that table size. */
struct SweepResult {
    size_t entries;
    size_t enrolled;
    double full_ns;   // ns per full-table end sweep
    double window_ns; // ns per update-window end sweep
    double
    speedup() const
    {
        return window_ns > 0 ? full_ns / window_ns : 0;
    }
};

SweepResult
bench_end_sweep(size_t entries)
{
    constexpr size_t kEnrolled = 8;
    constexpr ClockValue kGate = 5;
    SweepResult r;
    r.entries = entries;
    r.enrolled = kEnrolled;

    AdaptiveClockTable tbl;
    // This kernel measures the window mechanism itself; keep it on even
    // under the AERO_UPDATE_SETS=0 ablation (without this, the window
    // never opens and update_entries() below is out of bounds).
    tbl.set_update_sets_enabled(true);
    tbl.ensure_dim(8);
    ClockBank clocks(2, 8);
    clocks[0].set(0, kGate); // the ending thread's clock (pure)
    clocks[1].set(1, 3);     // a foreign writer: gates stay closed
    for (size_t i = 0; i < entries; ++i) {
        tbl.add_entry();
        tbl.assign(i, clocks[1], 1, true);
    }

    uint64_t fired = 0;
    r.full_ns = time_ns_per_op(
        [&] {
            for (size_t i = 0; i < entries; ++i)
                fired += tbl.get(i, 0) >= kGate;
            benchmark::DoNotOptimize(fired);
        },
        entries);
    r.full_ns *= static_cast<double>(entries); // per end, not per entry

    tbl.open_update_window(0, kGate);
    for (size_t i = 0; i < kEnrolled && i < entries; ++i)
        tbl.join(i, clocks[0], 0, true); // enrolls: source >= gate
    tbl.seal_update_window(0);
    const auto& set = tbl.update_entries(0);
    r.window_ns = time_ns_per_op(
        [&] {
            for (uint32_t i : set)
                fired += tbl.get(i, 0) >= kGate;
            benchmark::DoNotOptimize(fired);
        },
        1);
    return r;
}

/** Geometric mean of the speedups at dim >= 16 (the acceptance metric:
 *  single-dim points on a shared box are noisy; the geomean across the
 *  swept dims is the stable summary). */
double
geomean_dim16plus(const std::vector<KernelResult>& results)
{
    double log_sum = 0;
    size_t n = 0;
    for (const auto& r : results) {
        if (r.dim >= 16 && r.speedup() > 0) {
            log_sum += std::log(r.speedup());
            ++n;
        }
    }
    return n > 0 ? std::exp(log_sum / static_cast<double>(n)) : 0;
}

void
append_results(std::string& out, const char* kernel,
               const std::vector<KernelResult>& results, bool last)
{
    char buf[256];
    out += "  \"";
    out += kernel;
    out += "\": {\"per_dim\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"dim\": %zu, \"scalar_ns_per_op\": %.2f, "
                      "\"bank_ns_per_op\": %.2f, \"speedup\": %.2f}%s\n",
                      r.dim, r.scalar_ns, r.bank_ns, r.speedup(),
                      i + 1 < results.size() ? "," : "");
        out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  ], \"geomean_speedup_dim16plus\": %.2f}%s\n",
                  geomean_dim16plus(results), last ? "" : ",");
    out += buf;
}

int
run_kernel_comparison(const std::string& json_path)
{
    const size_t dims[] = {4, 16, 32, 64, 256};

    std::vector<KernelResult> join, leq, join_except;
    for (size_t dim : dims) {
        join.push_back(bench_join(dim));
        leq.push_back(bench_leq(dim));
        join_except.push_back(bench_join_except(dim));
    }

    std::vector<SweepResult> sweeps;
    for (size_t entries : {size_t{1000}, size_t{10000}, size_t{100000}})
        sweeps.push_back(bench_end_sweep(entries));

    std::printf("%-14s %6s %14s %14s %9s\n", "kernel", "dim", "scalar ns/op",
                "bank ns/op", "speedup");
    auto print = [](const char* name, const std::vector<KernelResult>& rs) {
        for (const auto& r : rs) {
            std::printf("%-14s %6zu %14.2f %14.2f %8.2fx\n", name, r.dim,
                        r.scalar_ns, r.bank_ns, r.speedup());
        }
    };
    print("join", join);
    print("leq", leq);
    print("join_except", join_except);

    std::printf("\n%-14s %8s %10s %14s %14s %9s\n", "kernel", "entries",
                "enrolled", "full ns/end", "window ns/end", "speedup");
    for (const auto& s : sweeps) {
        std::printf("%-14s %8zu %10zu %14.1f %14.1f %8.0fx\n", "end_sweep",
                    s.entries, s.enrolled, s.full_ns, s.window_ns,
                    s.speedup());
    }

    std::string out = "{\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf), "  \"family_size\": %zu,\n", kFamily);
    out += buf;
#ifdef AERO_VC_X86_DISPATCH
    out += vck::detail::kHaveAvx2 ? "  \"simd\": \"avx2\",\n"
                                  : "  \"simd\": \"autovec\",\n";
#else
    out += "  \"simd\": \"autovec\",\n";
#endif
    append_results(out, "join", join, false);
    append_results(out, "leq", leq, false);
    append_results(out, "join_except", join_except, false);
    out += "  \"end_sweep\": {\"per_table\": [\n";
    for (size_t i = 0; i < sweeps.size(); ++i) {
        const auto& s = sweeps[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"entries\": %zu, \"enrolled\": %zu, "
                      "\"full_ns_per_end\": %.1f, "
                      "\"window_ns_per_end\": %.1f, \"speedup\": %.0f}%s\n",
                      s.entries, s.enrolled, s.full_ns, s.window_ns,
                      s.speedup(), i + 1 < sweeps.size() ? "," : "");
        out += buf;
    }
    out += "  ]}\n";
    out += "}\n";

    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}

// --- Part 2: google-benchmark suite ---------------------------------------

void
BM_VcJoin(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    for (auto _ : state) {
        a.join(b);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcJoin)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_BankJoin(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    ClockBank bank(2, dim);
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    for (size_t d = 0; d < dim; ++d) {
        bank[0].set(d, a.get(d));
        bank[1].set(d, b.get(d));
    }
    for (auto _ : state) {
        bank[0].join(bank[1]);
        benchmark::DoNotOptimize(bank);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankJoin)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_VcLeq(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    bool r = false;
    for (auto _ : state) {
        r ^= a.leq(b);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcLeq)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_BankLeq(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    ClockBank bank(2, dim);
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    for (size_t d = 0; d < dim; ++d) {
        bank[0].set(d, a.get(d));
        bank[1].set(d, b.get(d));
    }
    bool r = false;
    for (auto _ : state) {
        r ^= ConstClockRef(bank[0]).leq(bank[1]);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankLeq)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_VcJoinExcept(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    for (auto _ : state) {
        a.join_except(b, dim / 2);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcJoinExcept)->Arg(4)->Arg(64);

/** Epoch-adaptive assign: the O(1) fast path (entry stays an epoch)
 *  vs. the inflated O(dim) path, at the same dimension. The gap is the
 *  per-access win the engines see on uncontended variables. */
void
BM_AdaptiveAssignEpoch(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    AdaptiveClockTable tbl;
    tbl.set_epochs_enabled(true);
    tbl.ensure_dim(dim);
    uint32_t i = tbl.add_entry();
    ClockBank clock(1, dim);
    clock[0].set(0, 5);
    for (auto _ : state) {
        tbl.assign(i, clock[0], 0, /*c_pure=*/true);
        benchmark::DoNotOptimize(tbl);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveAssignEpoch)->Arg(16)->Arg(64)->Arg(256);

void
BM_AdaptiveAssignInflated(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    AdaptiveClockTable tbl;
    tbl.set_epochs_enabled(false); // force the full-vector representation
    tbl.ensure_dim(dim);
    uint32_t i = tbl.add_entry();
    ClockBank clock(1, dim);
    VectorClock v = make_clock(dim, 3);
    for (size_t d = 0; d < dim; ++d)
        clock[0].set(d, v.get(d));
    for (auto _ : state) {
        tbl.assign(i, clock[0], 0, /*c_pure=*/false);
        benchmark::DoNotOptimize(tbl);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveAssignInflated)->Arg(16)->Arg(64)->Arg(256);

/** join_into (C_t |_|= W_x) with an epoch entry vs. an inflated one. */
void
BM_AdaptiveJoinInto(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    bool epoch = state.range(1) != 0;
    AdaptiveClockTable tbl;
    tbl.set_epochs_enabled(epoch);
    tbl.ensure_dim(dim);
    uint32_t i = tbl.add_entry();
    ClockBank clock(2, dim);
    clock[0].set(1, 7);
    tbl.assign(i, clock[0], 1, epoch); // epoch 7@1 or inflated row
    ClockRef dst = clock[1];
    for (size_t d = 0; d < dim; ++d)
        dst.set(d, 3);
    uint8_t dst_pure = 0;
    for (auto _ : state) {
        tbl.join_into(dst, i, 0, dst_pure);
        benchmark::DoNotOptimize(clock);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveJoinInto)
    ->Args({16, 1})
    ->Args({16, 0})
    ->Args({256, 1})
    ->Args({256, 0});

/** Per-event cost of the full engine as thread count grows (Theorem 4's
 *  |Thr| factor on non-end events). */
void
BM_AeroDromePerEventThreads(benchmark::State& state)
{
    uint32_t threads = static_cast<uint32_t>(state.range(0));
    Trace t = gen::make_independent(threads, 2000, 8);
    for (auto _ : state) {
        AeroDromeOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult r = run_checker(checker, t);
        benchmark::DoNotOptimize(r.violation);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_AeroDromePerEventThreads)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

/** End-event cost as the per-transaction variable footprint grows (the
 *  update-set V' factor). */
void
BM_AeroDromeEndEventFootprint(benchmark::State& state)
{
    uint32_t accesses = static_cast<uint32_t>(state.range(0));
    // Few transactions, each touching `accesses` distinct variables; the
    // trace is sized so total events stay constant across args.
    uint32_t txns = 32768 / accesses;
    Trace t = gen::make_independent(4, txns, accesses);
    for (auto _ : state) {
        AeroDromeOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult r = run_checker(checker, t);
        benchmark::DoNotOptimize(r.violation);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_AeroDromeEndEventFootprint)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_vc_ops.json";
    bool run_gbench = true;
    bool json_requested = false;
    bool gbench_flags = false;

    // Strip our flags before handing argv to google-benchmark.
    std::vector<char*> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
            json_requested = true;
        } else if (std::strcmp(argv[i], "--no-gbench") == 0) {
            run_gbench = false;
        } else {
            if (std::strncmp(argv[i], "--benchmark", 11) == 0)
                gbench_flags = true;
            passthrough.push_back(argv[i]);
        }
    }

    // --benchmark_* flags mean the user wants the gbench suite: skip the
    // ~5s kernel sweep so the recorded BENCH_vc_ops.json isn't clobbered
    // as a side effect — unless --json explicitly asked for it.
    if (json_requested || !gbench_flags) {
        int rc = run_kernel_comparison(json_path);
        if (rc != 0)
            return rc;
    }
    if (!run_gbench)
        return 0;

    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
