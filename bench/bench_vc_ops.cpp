/**
 * @file
 * Experiment E7 — microbenchmarks backing Theorem 4's cost model: every
 * non-end event costs O(|Thr|) (one vector-clock comparison + join), and
 * end events cost O(|Thr| + L + V') where V' is the update-set size.
 *
 * Google-benchmark binary; run with --benchmark_filter=... as usual.
 */

#include <benchmark/benchmark.h>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "vc/vector_clock.hpp"

namespace {

using namespace aero;

VectorClock
make_clock(size_t dim, uint32_t salt)
{
    VectorClock v(dim);
    for (size_t i = 0; i < dim; ++i)
        v.set(i, static_cast<ClockValue>((i * 2654435761u + salt) % 97));
    return v;
}

void
BM_VcJoin(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    for (auto _ : state) {
        a.join(b);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcJoin)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_VcLeq(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    bool r = false;
    for (auto _ : state) {
        r ^= a.leq(b);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcLeq)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_VcJoinExcept(benchmark::State& state)
{
    size_t dim = static_cast<size_t>(state.range(0));
    VectorClock a = make_clock(dim, 1);
    VectorClock b = make_clock(dim, 2);
    for (auto _ : state) {
        a.join_except(b, dim / 2);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcJoinExcept)->Arg(4)->Arg(64);

/** Per-event cost of the full engine as thread count grows (Theorem 4's
 *  |Thr| factor on non-end events). */
void
BM_AeroDromePerEventThreads(benchmark::State& state)
{
    uint32_t threads = static_cast<uint32_t>(state.range(0));
    Trace t = gen::make_independent(threads, 2000, 8);
    for (auto _ : state) {
        AeroDromeOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult r = run_checker(checker, t);
        benchmark::DoNotOptimize(r.violation);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_AeroDromePerEventThreads)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

/** End-event cost as the per-transaction variable footprint grows (the
 *  update-set V' factor). */
void
BM_AeroDromeEndEventFootprint(benchmark::State& state)
{
    uint32_t accesses = static_cast<uint32_t>(state.range(0));
    // Few transactions, each touching `accesses` distinct variables; the
    // trace is sized so total events stay constant across args.
    uint32_t txns = 32768 / accesses;
    Trace t = gen::make_independent(4, txns, accesses);
    for (auto _ : state) {
        AeroDromeOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult r = run_checker(checker, t);
        benchmark::DoNotOptimize(r.violation);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_AeroDromeEndEventFootprint)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
