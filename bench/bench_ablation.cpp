/**
 * @file
 * Experiment E5 — ablation of the AeroDrome variants across the paper's
 * optimization ladder (Section 4.3 and Appendix C):
 *
 *   Algorithm 1 (basic):    O(|Thr| * V) read clocks, full-vector
 *                           comparisons, every end event scans all
 *                           variables and locks;
 *   Algorithm 2 (readopt):  two clocks per variable (R_x, hR_x),
 *                           one-component comparisons;
 *   Algorithm 3 (opt):      + lazy clock updates, per-thread update sets,
 *                           GC of edge-free transactions.
 *
 * Workloads chosen to stress each optimization:
 *   - reader mesh: many repeated reads of one variable (read clocks);
 *   - many-vars:   end events vs. per-variable scans (update sets);
 *   - independent: GC fast path;
 *   - star:        mixed regime of Table 1.
 *
 * Second mode (--epochs): the epoch-vs-vector sweep. Every engine runs
 * each workload twice — epochs OFF (the always-inflated full-vector
 * baseline, i.e. the PR 1 ClockBank representation) and epochs ON (the
 * adaptive layer of vc/adaptive_clock.hpp) — across contention levels
 * from "none" (thread-local variables, everything stays an epoch) to
 * "high" (every access contends, everything inflates). Results, epoch
 * hit rates and inflation counts are written to BENCH_epochs.json.
 *
 * Usage: bench_ablation [--repeat N] [--epochs] [--json PATH] [--quick]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/str.hpp"

namespace {

using namespace aero;

template <typename Checker>
double
time_checker(const Trace& t, int repeat, bool& violation)
{
    double best = 1e300;
    for (int i = 0; i < repeat; ++i) {
        Checker checker(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult r = run_checker(checker, t);
        violation = r.violation;
        best = std::min(best, r.seconds);
    }
    return best;
}

void
run_workload(const char* name, const Trace& t, int repeat)
{
    bool v1 = false, v2 = false, v3 = false, v4 = false;
    double basic = time_checker<AeroDromeBasic>(t, repeat, v1);
    double readopt = time_checker<AeroDromeReadOpt>(t, repeat, v2);
    double opt = time_checker<AeroDromeOpt>(t, repeat, v3);
    double tuned = time_checker<AeroDromeTuned>(t, repeat, v4);
    if (v1 != v2 || v2 != v3 || v3 != v4)
        std::printf("!! verdict mismatch on %s\n", name);
    std::printf("%-22s %10s  basic %9.4fs  readopt %9.4fs (%4.1fx)  "
                "opt %9.4fs (%6.1fx)  tuned %9.4fs (%6.1fx)\n",
                name, with_commas(t.size()).c_str(), basic, readopt,
                readopt > 0 ? basic / readopt : 0, opt,
                opt > 0 ? basic / opt : 0, tuned,
                tuned > 0 ? basic / tuned : 0);
}

int
run_classic_ablation(int repeat)
{
    std::printf("AeroDrome ablation: Algorithm 1 -> 2 -> 3 "
                "(best of %d runs; speedups vs Algorithm 1)\n\n",
                repeat);

    run_workload("reader-mesh 8x30000", gen::make_reader_mesh(8, 30000),
                 repeat);
    run_workload("independent 8x8000", gen::make_independent(8, 8000, 8),
                 repeat);
    run_workload("pipeline 6x3000", gen::make_pipeline(6, 3000), repeat);
    {
        gen::StarOptions opts;
        opts.producers = 3;
        opts.consumers = 3;
        opts.rounds = 2500;
        run_workload("star p3/c3 r2500", gen::make_star(opts), repeat);
    }
    {
        gen::NaiveSpecOptions opts;
        opts.threads = 8;
        opts.events_per_thread = 40000;
        opts.conflict_position = 2.0; // never: throughput-only run
        run_workload("naive 8x40000 no-confl", gen::make_naive_spec(opts),
                     repeat);
    }
    std::printf("\nExpected shape: readopt >= basic on read-heavy "
                "workloads; opt adds the\nlargest gains where end events "
                "dominate or transactions are independent.\n");
    return 0;
}

// --- Epoch-vs-vector sweep -------------------------------------------------

struct EpochRun {
    double off_s = 0;      ///< epochs disabled (full-vector baseline)
    double on_s = 0;       ///< epochs enabled
    uint64_t epoch_fast = 0;
    uint64_t vector_ops = 0;
    uint64_t inflations = 0;
    bool verdict_mismatch = false;

    double
    speedup() const
    {
        return on_s > 0 ? off_s / on_s : 0;
    }
    double
    hit_rate() const
    {
        uint64_t total = epoch_fast + vector_ops;
        return total > 0
                   ? static_cast<double>(epoch_fast) /
                         static_cast<double>(total)
                   : 1.0;
    }
};

template <typename Checker>
EpochRun
run_epoch_pair(const Trace& t, int repeat)
{
    EpochRun out;
    out.off_s = out.on_s = 1e300;
    bool v_off = false, v_on = false;
    // Interleave the two modes so drifting machine load hits both
    // equally, and keep the best of `repeat` per mode.
    for (int i = 0; i < repeat; ++i) {
        for (int mode = 0; mode < 2; ++mode) {
            Checker checker(t.num_threads(), t.num_vars(), t.num_locks());
            checker.set_epochs(mode == 1);
            RunResult r = run_checker(checker, t);
            if (mode == 0) {
                out.off_s = std::min(out.off_s, r.seconds);
                v_off = r.violation;
            } else {
                out.on_s = std::min(out.on_s, r.seconds);
                v_on = r.violation;
                out.epoch_fast = checker.epoch_stats().epoch_fast;
                out.vector_ops = checker.epoch_stats().vector_ops;
                out.inflations = checker.epoch_stats().inflations;
            }
        }
    }
    out.verdict_mismatch = v_off != v_on;
    return out;
}

struct SweepWorkload {
    std::string name;
    const char* contention;
    Trace trace;
};

int
run_epoch_sweep(const std::string& json_path, int repeat, bool quick)
{
    const uint32_t scale = quick ? 8 : 1;
    std::vector<SweepWorkload> workloads;

    // Contention ladder: "none" keeps every per-var/lock clock a pure
    // epoch; "high" inflates essentially everything, measuring the
    // adaptive layer's overhead over the flat-bank baseline. The
    // end-event-quadratic shapes (star/pipeline, where Algorithm 2's
    // O(V)-per-end sweep dominates both representations equally) stay in
    // the classic ablation; this sweep isolates the representation.
    {
        // Whole-lifetime transactions over private variables (the
        // Table 2 "naive atomicity spec" regime with the conflict
        // disabled): ends are rare, so the per-access O(dim)-vs-O(1)
        // difference is fully exposed.
        gen::NaiveSpecOptions opts;
        opts.threads = 32;
        opts.events_per_thread = 40000 / scale;
        opts.conflict_position = 2.0; // never
        workloads.push_back({"naive 32thr", "none",
                             gen::make_naive_spec(opts)});
        // Same shape at 2x the threads: the epoch fast path is O(1) in
        // |Thr|, the vector baseline O(|Thr|) — the speedup must grow.
        opts.threads = 64;
        workloads.push_back({"naive 64thr", "none",
                             gen::make_naive_spec(opts)});
    }
    workloads.push_back({"independent 32tx8", "low",
                         gen::make_independent(32, 4000 / scale, 8)});
    workloads.push_back({"philosophers 16", "medium",
                         gen::make_philosophers(16, 16000 / scale)});
    workloads.push_back({"reader-mesh 16", "high",
                         gen::make_reader_mesh(16, 50000 / scale)});

    std::printf("Epoch-adaptive sweep (best of %d; OFF = full-vector "
                "baseline)\n\n",
                repeat);
    std::printf("%-18s %-8s %-18s %10s %10s %8s %9s %10s\n", "workload",
                "contn", "engine", "off s", "on s", "speedup", "hit rate",
                "inflations");

    std::string json = "{\n  \"workloads\": [\n";
    bool any_mismatch = false;

    for (size_t w = 0; w < workloads.size(); ++w) {
        const SweepWorkload& wl = workloads[w];
        struct EngineRow {
            const char* name;
            EpochRun run;
        };
        EngineRow rows[] = {
            {"readopt", run_epoch_pair<AeroDromeReadOpt>(wl.trace, repeat)},
            {"opt", run_epoch_pair<AeroDromeOpt>(wl.trace, repeat)},
            {"tuned", run_epoch_pair<AeroDromeTuned>(wl.trace, repeat)},
        };

        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"contention\": \"%s\", "
                      "\"events\": %zu, \"engines\": [\n",
                      wl.name.c_str(), wl.contention, wl.trace.size());
        json += buf;

        for (size_t e = 0; e < 3; ++e) {
            const EpochRun& r = rows[e].run;
            any_mismatch |= r.verdict_mismatch;
            std::printf("%-18s %-8s %-18s %10.4f %10.4f %7.2fx %8.1f%% "
                        "%10s%s\n",
                        e == 0 ? wl.name.c_str() : "",
                        e == 0 ? wl.contention : "", rows[e].name, r.off_s,
                        r.on_s, r.speedup(), 100.0 * r.hit_rate(),
                        with_commas(r.inflations).c_str(),
                        r.verdict_mismatch ? "  !! VERDICT MISMATCH" : "");
            std::snprintf(
                buf, sizeof(buf),
                "      {\"engine\": \"%s\", \"epochs_off_s\": %.6f, "
                "\"epochs_on_s\": %.6f, \"speedup\": %.3f, "
                "\"epoch_hit_rate\": %.4f, \"inflations\": %llu}%s\n",
                rows[e].name, r.off_s, r.on_s, r.speedup(), r.hit_rate(),
                static_cast<unsigned long long>(r.inflations),
                e + 1 < 3 ? "," : "");
            json += buf;
        }
        json += w + 1 < workloads.size() ? "    ]},\n" : "    ]}\n";
    }
    json += "  ]\n}\n";

    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return any_mismatch ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    // Algorithm 1's per-end scans over all variables make it ~1000x
    // slower than Algorithm 3 on the end-heavy workloads, so the default
    // sizes are kept modest; scale up with --repeat / larger sources for
    // precision.
    int repeat = 1;
    bool epochs = false;
    bool quick = false;
    std::string json_path = "BENCH_epochs.json";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--repeat" && i + 1 < argc)
            repeat = std::stoi(argv[++i]);
        else if (a == "--epochs")
            epochs = true;
        else if (a == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (a == "--quick")
            quick = true;
    }
    if (epochs)
        return run_epoch_sweep(json_path, repeat, quick);
    return run_classic_ablation(repeat);
}
