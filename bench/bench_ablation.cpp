/**
 * @file
 * Experiment E5 — ablation of the AeroDrome variants across the paper's
 * optimization ladder (Section 4.3 and Appendix C):
 *
 *   Algorithm 1 (basic):    O(|Thr| * V) read clocks, full-vector
 *                           comparisons, every end event scans all
 *                           variables and locks;
 *   Algorithm 2 (readopt):  two clocks per variable (R_x, hR_x),
 *                           one-component comparisons;
 *   Algorithm 3 (opt):      + lazy clock updates, per-thread update sets,
 *                           GC of edge-free transactions.
 *
 * Workloads chosen to stress each optimization:
 *   - reader mesh: many repeated reads of one variable (read clocks);
 *   - many-vars:   end events vs. per-variable scans (update sets);
 *   - independent: GC fast path;
 *   - star:        mixed regime of Table 1.
 *
 * Usage: bench_ablation [--repeat N]
 */

#include <cstdio>
#include <string>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/str.hpp"

namespace {

using namespace aero;

template <typename Checker>
double
time_checker(const Trace& t, int repeat, bool& violation)
{
    double best = 1e300;
    for (int i = 0; i < repeat; ++i) {
        Checker checker(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult r = run_checker(checker, t);
        violation = r.violation;
        best = std::min(best, r.seconds);
    }
    return best;
}

void
run_workload(const char* name, const Trace& t, int repeat)
{
    bool v1 = false, v2 = false, v3 = false, v4 = false;
    double basic = time_checker<AeroDromeBasic>(t, repeat, v1);
    double readopt = time_checker<AeroDromeReadOpt>(t, repeat, v2);
    double opt = time_checker<AeroDromeOpt>(t, repeat, v3);
    double tuned = time_checker<AeroDromeTuned>(t, repeat, v4);
    if (v1 != v2 || v2 != v3 || v3 != v4)
        std::printf("!! verdict mismatch on %s\n", name);
    std::printf("%-22s %10s  basic %9.4fs  readopt %9.4fs (%4.1fx)  "
                "opt %9.4fs (%6.1fx)  tuned %9.4fs (%6.1fx)\n",
                name, with_commas(t.size()).c_str(), basic, readopt,
                readopt > 0 ? basic / readopt : 0, opt,
                opt > 0 ? basic / opt : 0, tuned,
                tuned > 0 ? basic / tuned : 0);
}

} // namespace

int
main(int argc, char** argv)
{
    // Algorithm 1's per-end scans over all variables make it ~1000x
    // slower than Algorithm 3 on the end-heavy workloads, so the default
    // sizes are kept modest; scale up with --repeat / larger sources for
    // precision.
    int repeat = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--repeat" && i + 1 < argc)
            repeat = std::stoi(argv[++i]);
    }
    std::printf("AeroDrome ablation: Algorithm 1 -> 2 -> 3 "
                "(best of %d runs; speedups vs Algorithm 1)\n\n",
                repeat);

    run_workload("reader-mesh 8x30000", gen::make_reader_mesh(8, 30000),
                 repeat);
    run_workload("independent 8x8000", gen::make_independent(8, 8000, 8),
                 repeat);
    run_workload("pipeline 6x3000", gen::make_pipeline(6, 3000), repeat);
    {
        gen::StarOptions opts;
        opts.producers = 3;
        opts.consumers = 3;
        opts.rounds = 2500;
        run_workload("star p3/c3 r2500", gen::make_star(opts), repeat);
    }
    {
        gen::NaiveSpecOptions opts;
        opts.threads = 8;
        opts.events_per_thread = 40000;
        opts.conflict_position = 2.0; // never: throughput-only run
        run_workload("naive 8x40000 no-confl", gen::make_naive_spec(opts),
                     repeat);
    }
    std::printf("\nExpected shape: readopt >= basic on read-heavy "
                "workloads; opt adds the\nlargest gains where end events "
                "dominate or transactions are independent.\n");
    return 0;
}
