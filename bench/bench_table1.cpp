/**
 * @file
 * Experiment E1 — reproduction of the paper's Table 1 (benchmarks with
 * realistic atomicity specifications from DoubleChecker).
 *
 * Expected shape: on the star-modelled rows (avrora, lusearch, moldyn,
 * montecarlo, raytracer, sunflow, elevator) Velodrome's transaction graph
 * keeps growing and its per-edge cycle checks blow up — timing out under
 * the budget — while AeroDrome finishes in linear time. On the
 * GC-friendly rows (luindex, pmd, sor, tsp, xalan) Velodrome's graph
 * stays at a handful of nodes and the two are comparable, with Velodrome
 * often slightly ahead (paper speed-ups 0.72-0.86).
 */

#include "table_common.hpp"

int
main(int argc, char** argv)
{
    auto args = aero::bench::TableArgs::parse(argc, argv);
    aero::bench::run_table(
        "Table 1: realistic atomicity specifications (DoubleChecker specs)",
        aero::gen::table1_models(), args);
    return 0;
}
