#pragma once

/**
 * @file
 * Shared harness for the Table 1 / Table 2 reproduction binaries.
 *
 * For every benchmark model the harness:
 *   1. generates the model trace (scaled by --scale),
 *   2. computes MetaInfo (events/threads/locks/vars/transactions),
 *   3. runs Velodrome under a wall-clock budget (--budget seconds,
 *      reproducing the paper's 10-hour timeout at laptop scale),
 *   4. runs AeroDrome (the optimized engine, as in the paper's tool),
 *   5. prints the measured row next to the paper's reference numbers.
 *
 * Usage: bench_table1 [--scale S] [--budget SECONDS] [--filter NAME]
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/report.hpp"
#include "analysis/runner.hpp"
#include "gen/bench_models.hpp"
#include "support/str.hpp"
#include "trace/metainfo.hpp"
#include "velodrome/velodrome.hpp"

namespace aero::bench {

struct TableArgs {
    double scale = 1.0;
    double budget_seconds = 5.0;
    std::string filter;

    static TableArgs
    parse(int argc, char** argv)
    {
        TableArgs args;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            auto next = [&]() -> std::string {
                return i + 1 < argc ? argv[++i] : "";
            };
            if (a == "--scale") {
                args.scale = std::stod(next());
            } else if (a == "--budget") {
                args.budget_seconds = std::stod(next());
            } else if (a == "--filter") {
                args.filter = next();
            } else if (a == "--help") {
                std::printf("usage: %s [--scale S] [--budget SECONDS] "
                            "[--filter NAME]\n",
                            argv[0]);
                std::exit(0);
            }
        }
        return args;
    }
};

inline void
run_table(const char* title, const std::vector<gen::BenchModel>& models,
          const TableArgs& args)
{
    std::printf("%s\n", title);
    std::printf("scale=%.3g, Velodrome budget=%.3gs (paper: 10h)\n\n",
                args.scale, args.budget_seconds);

    TextTable table;
    table.header({"Program", "Events", "Thr", "Lk", "Vars", "Txns",
                  "Atom?", "Velo(s)", "Aero(s)", "Speedup",
                  "|paper:", "Events", "Atom?", "Velo", "Aero", "Speedup"});

    for (const auto& m : models) {
        if (!args.filter.empty() && m.name.find(args.filter) ==
                                        std::string::npos) {
            continue;
        }
        Trace trace = gen::build_model_trace_scaled(m, args.scale);
        MetaInfo info = compute_metainfo(trace);

        RunBudget budget;
        budget.max_seconds = args.budget_seconds;

        Velodrome velo(trace.num_threads(), trace.num_vars(),
                       trace.num_locks());
        RunResult vr = run_checker(velo, trace, budget);

        AeroDromeOpt aero(trace.num_threads(), trace.num_vars(),
                          trace.num_locks());
        RunResult ar = run_checker(aero, trace, budget);

        // Speed-up of AeroDrome over Velodrome; when Velodrome timed out
        // the ratio is a lower bound (paper's "> N" rows).
        double ratio = ar.seconds > 0 ? vr.seconds / ar.seconds : 0;
        std::string speedup = format_speedup(ratio, vr.timed_out);

        table.row({
            m.name,
            with_commas(info.events),
            std::to_string(info.threads),
            std::to_string(info.locks),
            with_commas(info.vars),
            with_commas(info.transactions),
            ar.verdict(),
            vr.timed_out ? "TO" : format_duration(vr.seconds),
            format_duration(ar.seconds),
            speedup,
            "|",
            m.paper_events,
            m.paper_atomic,
            m.paper_velodrome,
            m.paper_aerodrome,
            m.paper_speedup,
        });
    }
    table.print(std::cout);
    std::printf(
        "\nShape check: 'Atom?' must match the paper column; speed-ups are\n"
        "expected to preserve the paper's *ordering* (TO rows >> 1, naive\n"
        "rows around 1), not its absolute values.\n");
}

} // namespace aero::bench
